// Package pvsim_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper (run `go test -bench=. -benchmem`), so
// every number in EXPERIMENTS.md can be regenerated from a single command.
// Benchmarks run the experiments at a reduced scale; use cmd/pvsim with
// -scale 1 (or higher) for the full-fidelity reports.
package pvsim_test

import (
	"context"
	"testing"

	"pvsim/internal/btb"
	pvcore "pvsim/internal/core"
	"pvsim/internal/experiments"
	"pvsim/internal/memsys"
	"pvsim/internal/sim"
	"pvsim/internal/sms"
	"pvsim/internal/sweep"
	"pvsim/internal/timing"
	"pvsim/internal/trace"
	"pvsim/internal/workloads"
)

// benchScale keeps full `go test -bench=.` runs in the minutes range while
// preserving every experiment's structure.
const benchScale = 0.05

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Options{Scale: benchScale, Seed: 42})
		doc := e.Run(r)
		if len(doc.Sections) == 0 {
			b.Fatalf("%s produced no output", id)
		}
		if i == 0 && testing.Verbose() {
			b.Logf("\n%s", doc.Text())
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkSpace(b *testing.B)  { benchExperiment(b, "space") }
func BenchmarkTiming(b *testing.B) { benchExperiment(b, "timing") }

// BenchmarkHeadline measures the paper's central comparison directly —
// dedicated 1K-11a vs virtualized PV-8 — and reports coverage and the
// PVProxy's L2 fill rate as benchmark metrics.
func BenchmarkHeadline(b *testing.B) {
	w, err := workloads.ByName("Apache")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		cfg := sim.Default(w)
		cfg.Warmup, cfg.Measure = 40_000, 40_000
		base := sim.Run(cfg)
		ded := cfg
		ded.Prefetch = sim.SMS1K11
		pv := cfg
		pv.Prefetch = sim.PV8
		dres, pres := sim.Run(ded), sim.Run(pv)
		b.ReportMetric(sim.CoverageOf(base, dres).Covered*100, "dedicated-cov-%")
		b.ReportMetric(sim.CoverageOf(base, pres).Covered*100, "pv8-cov-%")
		pt := pres.ProxyTotals()
		b.ReportMetric(pt.L2FillRate()*100, "pv-l2fill-%")
	}
}

// BenchmarkHeadlineReuse is BenchmarkHeadline on the system-reuse path: the
// three systems are built once and Reset in place each iteration, so the
// steady state measures pure simulation with no construction cost. Results
// are bit-identical to fresh builds (TestSystemResetBitIdentical).
func BenchmarkHeadlineReuse(b *testing.B) {
	w, err := workloads.ByName("Apache")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default(w)
	cfg.Warmup, cfg.Measure = 40_000, 40_000
	ded := cfg
	ded.Prefetch = sim.SMS1K11
	pv := cfg
	pv.Prefetch = sim.PV8
	bsys, dsys, psys := sim.NewSystem(cfg), sim.NewSystem(ded), sim.NewSystem(pv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 {
			bsys.Reset()
			dsys.Reset()
			psys.Reset()
		}
		base, dres, pres := bsys.Run(), dsys.Run(), psys.Run()
		b.ReportMetric(sim.CoverageOf(base, dres).Covered*100, "dedicated-cov-%")
		b.ReportMetric(sim.CoverageOf(base, pres).Covered*100, "pv8-cov-%")
	}
}

// BenchmarkSystemReset measures the in-place reset itself (clearing caches,
// predictor state and statistics of a warm PV-8 system).
func BenchmarkSystemReset(b *testing.B) {
	w, _ := workloads.ByName("Apache")
	cfg := sim.Default(w)
	cfg.Prefetch = sim.PV8
	sys := sim.NewSystem(cfg)
	for i := 0; i < 10_000; i++ {
		sys.StepAll()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset()
	}
}

// BenchmarkRunnerRerun measures a full experiments.Runner re-run of one
// configuration with KeepSystems: after the first iteration every Run is a
// Reset of the retained system, not a rebuild.
func BenchmarkRunnerRerun(b *testing.B) {
	w, _ := workloads.ByName("Apache")
	r := experiments.NewRunner(experiments.Options{Scale: benchScale, Seed: 42, KeepSystems: true})
	for i := 0; i < b.N; i++ {
		r.Reset()
		cfg := sim.Default(w)
		cfg.Warmup, cfg.Measure = 20_000, 20_000
		cfg.Prefetch = sim.PV8
		res := r.Run(cfg)
		if res.L1DReads() == 0 {
			b.Fatal("empty result")
		}
	}
}

// sweepBenchGrid is the N-config grid the sweep benchmarks run: two specs
// on one workload, so each iteration is three simulations (one shared
// baseline + two jobs) at the same 20k/20k warmup/measure split as
// BenchmarkRunnerRerun — making their allocs/op directly comparable
// (pooled sweep ≈ 3 x RunnerRerun + engine overhead).
func sweepBenchGrid() sweep.Grid {
	return sweep.Grid{
		Specs:     []string{"16-11a", "PV-8"},
		Workloads: []string{"Apache"},
		Seeds:     []uint64{42},
		Scale:     benchScale,
	}
}

// BenchmarkSweepGridCold runs the grid on a fresh engine every iteration:
// every system is rebuilt from scratch (the one-shot `pvsim sweep` cost).
func BenchmarkSweepGridCold(b *testing.B) {
	g := sweepBenchGrid()
	for i := 0; i < b.N; i++ {
		res, err := sweep.New(sweep.Options{Parallel: 1}).Run(context.Background(), g, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatalf("%d rows", len(res.Rows))
		}
	}
}

// BenchmarkSweepGridPooled re-runs the grid on one engine, Reset between
// iterations: results are recomputed but every system comes from the keyed
// pool and is reset in place — the serve path's steady state, and the
// allocation-free re-execution the acceptance bar measures.
func BenchmarkSweepGridPooled(b *testing.B) {
	g := sweepBenchGrid()
	e := sweep.New(sweep.Options{Parallel: 1})
	if _, err := e.Run(context.Background(), g, nil); err != nil {
		b.Fatal(err) // warm the pool before measuring
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		res, err := e.Run(context.Background(), g, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatalf("%d rows", len(res.Rows))
		}
	}
}

// Ablation benches for the design options DESIGN.md calls out.

// BenchmarkAblationPVCacheSize sweeps the PVCache size (§4.3 studied 8 vs
// 16 vs 32 and found little benefit beyond 8).
func BenchmarkAblationPVCacheSize(b *testing.B) {
	w, _ := workloads.ByName("Zeus")
	for _, entries := range []int{4, 8, 16, 32} {
		entries := entries
		b.Run(benchName("pvcache", entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.Default(w)
				cfg.Warmup, cfg.Measure = 30_000, 30_000
				cfg.Prefetch = sim.SMSVirtualizedSized(entries)
				res := sim.Run(cfg)
				pt := res.ProxyTotals()
				b.ReportMetric(pt.HitRate()*100, "pvcache-hit-%")
				b.ReportMetric(float64(res.Mem.L2Requests[memsys.PVFetch]), "pv-l2-reqs")
			}
		})
	}
}

// BenchmarkAblationOnChipOnly compares normal PV against the §2.2 option
// that never writes predictor metadata off-chip.
func BenchmarkAblationOnChipOnly(b *testing.B) {
	w, _ := workloads.ByName("Oracle")
	for _, onChipOnly := range []bool{false, true} {
		name := "offchip-backed"
		if onChipOnly {
			name = "onchip-only"
		}
		onChipOnly := onChipOnly
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.Default(w)
				cfg.Warmup, cfg.Measure = 30_000, 30_000
				// A small L2 forces PV lines off chip so the option matters
				// even at bench scale.
				cfg.Hier.L2.SizeBytes = 256 << 10
				cfg.Prefetch = sim.PV8
				cfg.Prefetch.OnChipOnly = onChipOnly
				res := sim.Run(cfg)
				offchip := res.Mem.OffChipWrites[memsys.ClassPV]
				b.ReportMetric(float64(offchip), "pv-offchip-writes")
				b.ReportMetric(float64(res.Mem.PVDroppedWritebacks), "pv-dropped")
			}
		})
	}
}

// BenchmarkAblationSharedTable compares per-core PVTables with the §2.1
// shared-table alternative.
func BenchmarkAblationSharedTable(b *testing.B) {
	w, _ := workloads.ByName("Apache")
	for _, shared := range []bool{false, true} {
		name := "per-core"
		if shared {
			name = "shared"
		}
		shared := shared
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.Default(w)
				cfg.Warmup, cfg.Measure = 30_000, 30_000
				cfg.Prefetch = sim.PV8
				cfg.Prefetch.SharedTable = shared
				base := cfg
				base.Prefetch = sim.Baseline
				cov := sim.CoverageOf(sim.Run(base), sim.Run(cfg))
				b.ReportMetric(cov.Covered*100, "cov-%")
			}
		})
	}
}

// Component microbenchmarks: the hot paths of the simulator itself.

func BenchmarkCacheLookup(b *testing.B) {
	c := memsys.NewCache(memsys.CacheConfig{
		Name: "L1", SizeBytes: 64 << 10, Ways: 4, BlockBytes: 64, TagLatency: 2, DataLatency: 2,
	})
	for i := 0; i < 1024; i++ {
		c.Fill(memsys.Addr(i)<<6, false, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(memsys.Addr(i&1023)<<6, false)
	}
}

func BenchmarkHierarchyData(b *testing.B) {
	h := memsys.New(memsys.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Data(i&3, memsys.Addr(i&0xFFFF)<<6, false)
	}
}

func BenchmarkProxyAccess(b *testing.B) {
	h := memsys.New(memsys.DefaultConfig())
	v := sms.NewVirtualizedPHT(sms.DefaultVPHTConfig(0xF0000000), pvcore.HierarchyBackend{H: h})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Proxy().Access(uint64(i), i&1023)
	}
}

func BenchmarkEngineOnAccess(b *testing.B) {
	pht := sms.NewInfinitePHT()
	e := sms.NewEngine(sms.DefaultGeometry(), sms.DefaultAGTConfig(), pht, nullSink{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc := memsys.Addr(0x400 + (i&0xFF)*4)
		addr := memsys.Addr(uint64(i&0xFFF) << 11)
		e.OnAccess(0, pc, addr)
	}
}

type nullSink struct{}

func (nullSink) Prefetch(memsys.Addr, uint64) {}

func BenchmarkGeneratorNext(b *testing.B) {
	w, _ := workloads.ByName("DB2")
	g := trace.NewGenerator(w.Params, 42, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkHeadlineStreamReplay is the compiled-trace acceptance pair: the
// per-access cost of producing the stream live (what every uncompiled step
// pays for stream production) versus batch-decoding it from a compiled
// binary trace. The compiled side must stay >=2x faster — this is the
// headline number BENCH_*.json records and scripts/bench_guard.sh tracks.
func BenchmarkHeadlineStreamReplay(b *testing.B) {
	w, _ := workloads.ByName("DB2")
	b.Run("generator", func(b *testing.B) {
		g := trace.NewGenerator(w.Params, 42, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.Next()
		}
	})
	b.Run("compiled", func(b *testing.B) {
		const span = 1 << 20
		ct, err := trace.Compile(trace.NewGenerator(w.Params, 42, 0), span, 0, "bench")
		if err != nil {
			b.Fatal(err)
		}
		p := ct.Replayer()
		batch := make([]trace.Access, trace.DefaultChunkLen)
		b.ResetTimer()
		for n := b.N; n > 0; {
			k := len(batch)
			if k > n {
				k = n
			}
			got := p.ReadBatch(batch[:k])
			if got < k {
				p.Reset()
			}
			n -= got
		}
	})
}

// BenchmarkSystemStepCompiled is BenchmarkSystemStep through the batched
// compiled pipeline: ns/op is per access (all cores round-robin), directly
// comparable to BenchmarkSystemStep's per-access number, with stream
// production amortized to a chunk decode per core per batch.
func BenchmarkSystemStepCompiled(b *testing.B) {
	w, _ := workloads.ByName("Apache")
	cfg := sim.Default(w)
	cfg.Prefetch = sim.PV8
	cfg.Timing = true
	const span = 200_000 // compiled accesses per core (Warmup+Measure)
	cfg.Warmup, cfg.Measure = 0, span
	cfg.Compile = true
	sys := sim.NewSystem(cfg)
	cores := cfg.Hier.Cores
	left := span
	const rounds = 1000
	b.ResetTimer()
	for n := b.N; n > 0; {
		if left < rounds {
			b.StopTimer()
			sys.Reset()
			left = span
			b.StartTimer()
		}
		k := rounds
		if need := (n + cores - 1) / cores; need < k {
			k = need
		}
		sys.StepAllN(k)
		left -= k
		n -= k * cores
	}
}

// BenchmarkHeadlineCompiledReuse is BenchmarkHeadlineReuse on the
// compiled-trace pipeline: each system compiles its streams once at build
// time and every iteration batch-replays them after an in-place Reset —
// the hot-grid steady state of a compiled sweep. Coverage metrics are
// bit-identical to the generator path (TestCompiledRunBitIdentical).
func BenchmarkHeadlineCompiledReuse(b *testing.B) {
	w, err := workloads.ByName("Apache")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default(w)
	cfg.Warmup, cfg.Measure = 40_000, 40_000
	cfg.Compile = true
	ded := cfg
	ded.Prefetch = sim.SMS1K11
	pv := cfg
	pv.Prefetch = sim.PV8
	bsys, dsys, psys := sim.NewSystem(cfg), sim.NewSystem(ded), sim.NewSystem(pv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 {
			bsys.Reset()
			dsys.Reset()
			psys.Reset()
		}
		base, dres, pres := bsys.Run(), dsys.Run(), psys.Run()
		b.ReportMetric(sim.CoverageOf(base, dres).Covered*100, "dedicated-cov-%")
		b.ReportMetric(sim.CoverageOf(base, pres).Covered*100, "pv8-cov-%")
	}
}

// BenchmarkSystemStepParallel is the intra-run core-parallelism acceptance
// pair: the batched compiled pipeline stepping all cores serial round-robin
// versus the two-phase parallel stepper (Config.CoreParallel) on the same
// wiring — PV-8 with the passive cost model folding, the parallel path's
// headline configuration (the IPC timing model keeps the serial stepper).
// ns/op is per access in both cases; results are bit-identical
// (TestCoreParallelBitIdentical). The parallel side must stay >=1.5x faster
// on a 4-hardware-thread host — the number BENCH_*.json records and
// scripts/bench_guard.sh tracks.
func BenchmarkSystemStepParallel(b *testing.B) {
	w, _ := workloads.ByName("Apache")
	base := sim.Default(w)
	base.Prefetch = sim.PV8
	base.Cost = timing.Config{Enabled: true}
	const span = 200_000 // compiled accesses per core (Warmup+Measure)
	base.Warmup, base.Measure = 0, span
	base.Compile = true
	for _, par := range []bool{false, true} {
		name := "serial"
		if par {
			name = "parallel"
		}
		cfg := base
		cfg.CoreParallel = par
		b.Run(name, func(b *testing.B) {
			sys := sim.NewSystem(cfg)
			if par && !sys.CoreParallelActive() {
				b.Fatal("parallel stepper not engaged")
			}
			cores := cfg.Hier.Cores
			left := span
			const rounds = 1000
			b.ResetTimer()
			for n := b.N; n > 0; {
				if left < rounds {
					b.StopTimer()
					sys.Reset()
					left = span
					b.StartTimer()
				}
				k := rounds
				if need := (n + cores - 1) / cores; need < k {
					k = need
				}
				sys.StepAllN(k)
				left -= k
				n -= k * cores
			}
		})
	}
}

func BenchmarkSystemStep(b *testing.B) {
	w, _ := workloads.ByName("Apache")
	cfg := sim.Default(w)
	cfg.Prefetch = sim.PV8
	cfg.Timing = true
	sys := sim.NewSystem(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(i & 3)
	}
}

// BenchmarkSystemStepCost is BenchmarkSystemStep with the passive cost
// model folding every step: the fold must keep the hot path at 0
// allocs/op (its accumulators are fixed per-core structs).
func BenchmarkSystemStepCost(b *testing.B) {
	w, _ := workloads.ByName("Apache")
	cfg := sim.Default(w)
	cfg.Prefetch = sim.PV8
	cfg.Timing = true
	cfg.Cost = timing.Config{Enabled: true}
	sys := sim.NewSystem(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step(i & 3)
	}
}

// BenchmarkHeadlineCostReuse is BenchmarkHeadlineReuse with cost
// accounting on: the system-reuse steady state must stay allocation-free
// with the fold active, and it reports the modeled PV-8 slowdown next to
// the coverage metrics.
func BenchmarkHeadlineCostReuse(b *testing.B) {
	w, err := workloads.ByName("Apache")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Default(w)
	cfg.Warmup, cfg.Measure = 40_000, 40_000
	cfg.Cost = timing.Config{Enabled: true}
	ded := cfg
	ded.Prefetch = sim.SMS1K11
	pv := cfg
	pv.Prefetch = sim.PV8
	dsys, psys := sim.NewSystem(ded), sim.NewSystem(pv)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 {
			dsys.Reset()
			psys.Reset()
		}
		dres, pres := dsys.Run(), psys.Run()
		b.ReportMetric(pres.Cost.SlowdownOver(dres.Cost), "pv8-slowdown-x")
		pt := pres.ProxyTotals()
		b.ReportMetric(pt.HitRate()*100, "pvcache-hit-%")
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// BenchmarkAblationPVArbitration implements the arbitration knob §2.2
// mentions but the paper left unimplemented: application requests
// prioritized over PVProxy requests at the L2 banks. The paper's implicit
// claim — that not prioritizing costs nothing — shows as near-identical
// speedups.
func BenchmarkAblationPVArbitration(b *testing.B) {
	w, _ := workloads.ByName("DB2")
	for _, prio := range []bool{false, true} {
		name := "equal-priority"
		if prio {
			name = "app-first"
		}
		prio := prio
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sim.Default(w)
				cfg.Warmup, cfg.Measure = 30_000, 30_000
				cfg.Timing = true
				cfg.Windows = 10
				cfg.Hier.PrioritizeAppOverPV = prio
				base := cfg
				base.Prefetch = sim.Baseline
				cfg.Prefetch = sim.PV8
				bres, res := sim.Run(base), sim.Run(cfg)
				iv, err := sim.SpeedupOver(bres, res)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric((iv.Mean-1)*100, "speedup-%")
				b.ReportMetric(float64(res.Mem.BankWaitCycles[memsys.PVFetch]), "pv-bank-wait-cyc")
			}
		})
	}
}

// BenchmarkBTBVirtualization exercises the §6 future-work predictor: a
// large virtualized BTB vs small/large dedicated ones on the same branch
// stream.
func BenchmarkBTBVirtualization(b *testing.B) {
	stream := btb.DefaultStreamParams()
	const branches = 200_000
	for i := 0; i < b.N; i++ {
		small := btb.Measure(btb.NewDedicated(btb.DefaultConfig(512)), stream, 7, branches)
		large := btb.Measure(btb.NewDedicated(btb.DefaultConfig(16384)), stream, 7, branches)
		h := memsys.New(memsys.DefaultConfig())
		virt := btb.Measure(
			btb.NewVirtualized(btb.DefaultConfig(16384), pvcore.DefaultProxyConfig("btb"), 0xF0000000, 64,
				pvcore.HierarchyBackend{H: h}),
			stream, 7, branches)
		b.ReportMetric(small*100, "small-hit-%")
		b.ReportMetric(large*100, "large-hit-%")
		b.ReportMetric(virt*100, "virt-hit-%")
	}
}
